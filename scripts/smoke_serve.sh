#!/bin/sh
# End-to-end smoke test for nordserved: boot the service on an ephemeral
# port, submit a small 4x4 synthetic job, poll it to completion, resubmit
# the identical request and assert a cache hit, sanity-check /metrics,
# run the same job on a 4x4 torus (asserting a distinct cache key, a hit
# on resubmission, and a 400 for an unknown topology),
# run a seeded design-space search twice through nordsearch (asserting a
# byte-identical Pareto front and >= 90% child-cache hits on the rerun),
# then drain the server with SIGTERM. A second phase boots a coordinator
# with two fleet workers, kills one worker mid-job (SIGKILL, so no
# graceful give-back) and asserts the lease expires, the job requeues,
# and the surviving worker completes it. A third phase boots a journaled
# coordinator, exercises the remote cache tier (seeded GET hit, PUT 204,
# corrupt PUT 400), SIGKILLs the coordinator mid-job and restarts it on
# the same address: every job must reach a terminal state with bytes
# identical to a fresh local-mode run. Needs only sh + curl + grep/sed.
set -eu

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
LOG="$WORKDIR/nordserved.log"
BIN="$WORKDIR/nordserved"
SRV_PID=""
COORD_PID=""
W1_PID=""
W2_PID=""
W3_PID=""

cleanup() {
    for pid in "$SRV_PID" "$W1_PID" "$W2_PID" "$W3_PID" "$COORD_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -TERM "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "SMOKE FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

echo "== building nordserved"
go build -o "$BIN" ./cmd/nordserved

echo "== booting on an ephemeral port"
"$BIN" -addr 127.0.0.1:0 -workers 2 -cache-dir "$WORKDIR/cache" >"$LOG" 2>&1 &
SRV_PID=$!

ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^nordserved listening on //p' "$LOG")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done
[ -n "$ADDR" ] && echo "   listening on $ADDR" || fail "no listen line in log"

BASE="http://$ADDR"
JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":20000,"seed":7}}'

echo "== healthz"
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

echo "== submitting a 4x4 synthetic job"
SUB=$(curl -fsS "$BASE/v1/jobs" -d "$JOB")
echo "   $SUB"
ID=$(echo "$SUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "no job id in $SUB"
echo "$SUB" | grep -q '"cached":false' || fail "first submission claimed a cache hit"

echo "== polling $ID to completion"
STATE=""
for _ in $(seq 1 100); do
    STATUS=$(curl -fsS "$BASE/v1/jobs/$ID")
    STATE=$(echo "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|canceled) fail "job ended in state $STATE: $STATUS" ;;
    esac
    sleep 0.2
done
[ "$STATE" = done ] || fail "job stuck in state '$STATE'"
echo "$STATUS" | grep -q '"avg_packet_latency"\|"result"' || fail "done job carries no result: $STATUS"

# Keep this run's cache key and payload: the durable-fleet phase below
# seeds its remote cache tier with them and asserts a zero-work hit.
KEY=$(echo "$SUB" | sed -n 's/.*"key":"\([^"]*\)".*/\1/p')
[ -n "$KEY" ] || fail "no cache key in $SUB"
curl -fsS "$BASE/v1/cache/$KEY" -o "$WORKDIR/ref.json" || fail "cache tier GET for $KEY failed"

echo "== resubmitting the identical job (must be a cache hit)"
RESUB=$(curl -fsS "$BASE/v1/jobs" -d "$JOB")
echo "   $RESUB"
echo "$RESUB" | grep -q '"cached":true' || fail "resubmission missed the cache: $RESUB"

echo "== checking /metrics"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^nord_sims_executed_total 1$' || fail "expected exactly one executed sim"
echo "$METRICS" | grep -q '^nord_cache_hits_total 1$' || fail "expected one cache hit"
echo "$METRICS" | grep -q '^nord_cache_misses_total 1$' || fail "expected one cache miss"
echo "$METRICS" | grep -q '^nord_jobs_total{state="done"} 1$' || fail "expected one done job"

echo "== submitting a sharded (parallelism:4) job"
PAR_JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":8,"height":8,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":20000,"seed":19,"parallelism":4}}'
PSUB=$(curl -fsS "$BASE/v1/jobs" -d "$PAR_JOB")
echo "   $PSUB"
PJID=$(echo "$PSUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$PJID" ] || fail "no parallel job id in $PSUB"
PSTATE=""
for _ in $(seq 1 100); do
    PSTATUS=$(curl -fsS "$BASE/v1/jobs/$PJID")
    PSTATE=$(echo "$PSTATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$PSTATE" in
        done) break ;;
        failed|canceled) fail "parallel job ended in state $PSTATE: $PSTATUS" ;;
    esac
    sleep 0.2
done
[ "$PSTATE" = done ] || fail "parallel job stuck in state '$PSTATE'"

echo "== parallelism must be excluded from the cache key"
# The very first job resubmitted with parallelism:4 — results are
# bit-identical at any shard count, so it must hit the serial run's cache.
JOB_P4='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":20000,"seed":7,"parallelism":4}}'
PHIT=$(curl -fsS "$BASE/v1/jobs" -d "$JOB_P4")
echo "   $PHIT"
echo "$PHIT" | grep -q '"cached":true' || fail "parallelism leaked into the cache key: $PHIT"

echo "== submitting a 4x4 torus job (distinct cache key, then a hit)"
TORUS_JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"topology":"torus","pattern":"uniform","rate":0.05,"warmup":1000,"measure":20000,"seed":7}}'
TOSUB=$(curl -fsS "$BASE/v1/jobs" -d "$TORUS_JOB")
echo "   $TOSUB"
TOID=$(echo "$TOSUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
TOKEY=$(echo "$TOSUB" | sed -n 's/.*"key":"\([^"]*\)".*/\1/p')
[ -n "$TOID" ] || fail "no torus job id in $TOSUB"
# Same design/size/seed as the mesh job: only the topology differs, so
# the key must differ — a shared key would silently serve mesh results.
[ "$TOKEY" != "$KEY" ] || fail "torus job reused the mesh cache key $KEY"
echo "$TOSUB" | grep -q '"cached":false' || fail "first torus submission claimed a cache hit"
TOSTATE=""
for _ in $(seq 1 100); do
    TOSTATUS=$(curl -fsS "$BASE/v1/jobs/$TOID")
    TOSTATE=$(echo "$TOSTATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$TOSTATE" in
        done) break ;;
        failed|canceled) fail "torus job ended in state $TOSTATE: $TOSTATUS" ;;
    esac
    sleep 0.2
done
[ "$TOSTATE" = done ] || fail "torus job stuck in state '$TOSTATE'"
TORESUB=$(curl -fsS "$BASE/v1/jobs" -d "$TORUS_JOB")
echo "   $TORESUB"
echo "$TORESUB" | grep -q '"cached":true' || fail "torus resubmission missed the cache: $TORESUB"
# "hypercube" must be rejected loudly, not silently mapped to a mesh.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs" \
    -d '{"kind":"synthetic","synthetic":{"design":"nord","topology":"hypercube"}}')
[ "$CODE" = 400 ] || fail "unknown topology returned $CODE, want 400"

echo "== submitting a traced job and streaming /trace"
TRACED_JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":20000,"seed":7,"trace_events":true}}'
TSUB=$(curl -fsS "$BASE/v1/jobs" -d "$TRACED_JOB")
echo "   $TSUB"
TID=$(echo "$TSUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$TID" ] || fail "no traced job id in $TSUB"
echo "$TSUB" | grep -q '"cached":false' || fail "traced job must not hit the untraced cache: $TSUB"
# The stream blocks until the job finishes, so this also acts as the poll.
TRACE=$(curl -fsS --max-time 60 "$BASE/v1/jobs/$TID/trace")
echo "$TRACE" | grep -q '"type":"event"' || fail "trace stream has no event lines"
echo "$TRACE" | grep -q '"kind":"gate_off"' || fail "trace stream has no gate_off events"
echo "$TRACE" | grep -q '"kind":"wake_start"' || fail "trace stream has no wake_start events"
END=$(echo "$TRACE" | grep '"type":"end"')
[ -n "$END" ] || fail "trace stream has no end line"
echo "   $END"
echo "$END" | grep -q '"done":true' || fail "trace end line not terminal: $END"
echo "$END" | grep -q '"state":"done"' || fail "traced job did not finish: $END"
# An untraced job must refuse the trace stream with guidance.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs/$ID/trace")
[ "$CODE" = 409 ] || fail "untraced job trace returned $CODE, want 409"

echo "== checking per-design metrics"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^nord_sim_wakeups_total{design="NoRD"} [1-9]' || fail "no NoRD wakeups counted"
echo "$METRICS" | grep -q '^nord_sim_detours_total{design="No_PG"} 0$' || fail "missing zero-valued detour series"

echo "== building nordsearch"
SBIN="$WORKDIR/nordsearch"
go build -o "$SBIN" ./cmd/nordsearch

echo "== seeded design-space search (run 1)"
SPEC="$WORKDIR/search.json"
cat >"$SPEC" <<'EOF'
{
  "algorithm": "nsga2",
  "seed": 3,
  "generations": 2,
  "population": 6,
  "measure": 1000,
  "space": {
    "designs": ["NoRD", "Conv_PG"],
    "widths": [4],
    "vcs": [3, 4],
    "buffer_depths": [2, 5],
    "gate_idle": [2],
    "wake_thresholds": [6],
    "rates": [0.05, 0.15]
  }
}
EOF
"$SBIN" -server "$BASE" -spec "$SPEC" -format front -quiet >"$WORKDIR/front1.json" \
    || fail "first search run failed"
grep -q '"design":"NoRD"' "$WORKDIR/front1.json" || fail "no NoRD point on the Pareto front"
grep -q '"cache_key"' "$WORKDIR/front1.json" || fail "front points carry no provenance"
SMETRICS=$(curl -fsS "$BASE/metrics")
EVALS1=$(echo "$SMETRICS" | sed -n 's/^nord_search_evaluations_total //p')
HITS1=$(echo "$SMETRICS" | sed -n 's/^nord_search_cache_hits_total //p')
[ -n "$EVALS1" ] && [ "$EVALS1" -gt 0 ] || fail "no search evaluations recorded: '$EVALS1'"

echo "== seeded design-space search (run 2: byte-identical front, warm cache)"
"$SBIN" -server "$BASE" -spec "$SPEC" -format front -quiet >"$WORKDIR/front2.json" \
    || fail "second search run failed"
cmp -s "$WORKDIR/front1.json" "$WORKDIR/front2.json" \
    || fail "fixed-seed front not byte-identical across runs"
SMETRICS=$(curl -fsS "$BASE/metrics")
EVALS2=$(echo "$SMETRICS" | sed -n 's/^nord_search_evaluations_total //p')
HITS2=$(echo "$SMETRICS" | sed -n 's/^nord_search_cache_hits_total //p')
D_EVALS=$((EVALS2 - EVALS1))
D_HITS=$((HITS2 - HITS1))
[ "$D_EVALS" -gt 0 ] || fail "second search made no evaluations"
[ $((D_HITS * 10)) -ge $((D_EVALS * 9)) ] \
    || fail "second identical search hit the cache on $D_HITS/$D_EVALS evaluations, want >= 90%"
echo "   search soak verified: identical fronts, $D_HITS/$D_EVALS cached evaluations"

echo "== draining with SIGTERM"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited non-zero on drain"
SRV_PID=""

# ---- fleet phase: coordinator + 2 workers, worker failure mid-job ----

CLOG="$WORKDIR/coordinator.log"
W1LOG="$WORKDIR/worker1.log"
W2LOG="$WORKDIR/worker2.log"

ffail() {
    echo "SMOKE FAIL (fleet): $*" >&2
    for f in "$CLOG" "$W1LOG" "$W2LOG"; do
        echo "--- $f ---" >&2
        cat "$f" >&2 2>/dev/null || true
    done
    exit 1
}

echo "== fleet: booting coordinator (1s lease TTL)"
"$BIN" -mode coordinator -addr 127.0.0.1:0 -lease-ttl 1s \
    -retry-base 100ms -retry-max 500ms -cache-dir "$WORKDIR/fleet-cache" \
    >"$CLOG" 2>&1 &
COORD_PID=$!

CADDR=""
for _ in $(seq 1 50); do
    CADDR=$(sed -n 's/^nordserved listening on //p' "$CLOG")
    [ -n "$CADDR" ] && break
    kill -0 "$COORD_PID" 2>/dev/null || ffail "coordinator exited during startup"
    sleep 0.1
done
[ -n "$CADDR" ] || ffail "no coordinator listen line"
CBASE="http://$CADDR"
echo "   coordinator on $CADDR"

echo "== fleet: starting worker w1"
"$BIN" -mode worker -coordinator "$CBASE" -worker-id w1 >"$W1LOG" 2>&1 &
W1_PID=$!
for _ in $(seq 1 50); do
    grep -q 'registered with' "$W1LOG" && break
    kill -0 "$W1_PID" 2>/dev/null || ffail "w1 exited during startup"
    sleep 0.1
done
grep -q 'registered with' "$W1LOG" || ffail "w1 never registered"
curl -fsS "$CBASE/metrics" | grep -q '^nord_fleet_workers_live 1$' \
    || ffail "coordinator does not see w1 live"

echo "== fleet: submitting a job sized to outlive its first worker"
FLEET_JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":1500000,"seed":11}}'
FSUB=$(curl -fsS "$CBASE/v1/jobs" -d "$FLEET_JOB")
echo "   $FSUB"
FID=$(echo "$FSUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$FID" ] || ffail "no fleet job id in $FSUB"

for _ in $(seq 1 100); do
    FSTATE=$(curl -fsS "$CBASE/v1/jobs/$FID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [ "$FSTATE" = running ] && break
    case "$FSTATE" in done|failed|canceled) ffail "job finished ($FSTATE) before the kill could land" ;; esac
    sleep 0.1
done
[ "$FSTATE" = running ] || ffail "job never started running on w1"

echo "== fleet: SIGKILL w1 mid-job, starting replacement w2"
kill -KILL "$W1_PID"
wait "$W1_PID" 2>/dev/null || true
W1_PID=""
"$BIN" -mode worker -coordinator "$CBASE" -worker-id w2 >"$W2LOG" 2>&1 &
W2_PID=$!

echo "== fleet: waiting for lease expiry, requeue, and completion on w2"
FSTATE=""
for _ in $(seq 1 120); do
    FSTATUS=$(curl -fsS "$CBASE/v1/jobs/$FID")
    FSTATE=$(echo "$FSTATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$FSTATE" in
        done) break ;;
        failed|canceled) ffail "fleet job ended in $FSTATE: $FSTATUS" ;;
    esac
    sleep 0.5
done
[ "$FSTATE" = done ] || ffail "fleet job stuck in state '$FSTATE' after w1 died"

FMETRICS=$(curl -fsS "$CBASE/metrics")
echo "$FMETRICS" | grep -q '^nord_fleet_lease_expiries_total [1-9]' \
    || ffail "no lease expiry recorded for the killed worker"
echo "$FMETRICS" | grep -q '^nord_fleet_requeues_total [1-9]' \
    || ffail "job was not requeued after the kill"
echo "$FMETRICS" | grep -q '^nord_fleet_local_jobs_total 0$' \
    || ffail "job fell back to local execution instead of failing over to w2"
echo "   failover verified: lease expired, job requeued, w2 completed it"

echo "== fleet: draining workers and coordinator"
kill -TERM "$W2_PID"
wait "$W2_PID" || ffail "w2 exited non-zero on drain"
W2_PID=""
kill -TERM "$COORD_PID"
wait "$COORD_PID" || ffail "coordinator exited non-zero on drain"
COORD_PID=""

# ---- durable fleet phase: journaled coordinator, SIGKILL + restart ----

DLOG="$WORKDIR/durable.log"
W3LOG="$WORKDIR/worker3.log"
JDIR="$WORKDIR/journal"
DCACHE="$WORKDIR/dur-cache"

dfail() {
    echo "SMOKE FAIL (durable): $*" >&2
    for f in "$DLOG" "$W3LOG"; do
        echo "--- $f ---" >&2
        cat "$f" >&2 2>/dev/null || true
    done
    exit 1
}

# boot_durable [addr] — (re)start the journaled coordinator, set
# COORD_PID and DADDR. A restart rebinds the address the dead
# incarnation held, retrying while the kernel releases it.
boot_durable() {
    want_addr="${1:-127.0.0.1:0}"
    attempt=0
    while :; do
        attempt=$((attempt + 1))
        : >"$DLOG"
        "$BIN" -mode coordinator -addr "$want_addr" -lease-ttl 5s \
            -retry-base 100ms -retry-max 500ms \
            -cache-dir "$DCACHE" -journal-dir "$JDIR" >"$DLOG" 2>&1 &
        COORD_PID=$!
        DADDR=""
        for _ in $(seq 1 50); do
            DADDR=$(sed -n 's/^nordserved listening on //p' "$DLOG")
            [ -n "$DADDR" ] && break
            kill -0 "$COORD_PID" 2>/dev/null || break
            sleep 0.1
        done
        [ -n "$DADDR" ] && return 0
        wait "$COORD_PID" 2>/dev/null || true
        COORD_PID=""
        [ "$attempt" -lt 20 ] || dfail "durable coordinator would not (re)bind $want_addr"
        sleep 0.2
    done
}

echo "== durable: booting journaled coordinator"
boot_durable
DBASE="http://$DADDR"
echo "   coordinator on $DADDR (journal $JDIR)"

echo "== durable: workerless healthz is alive-but-degraded"
HEALTH=$(curl -fsS "$DBASE/healthz")
echo "$HEALTH" | grep -q '"status":"degraded"' || dfail "workerless coordinator healthz not degraded: $HEALTH"
echo "$HEALTH" | grep -q 'no_live_workers' || dfail "degraded healthz missing no_live_workers note: $HEALTH"

echo "== durable: remote cache tier (seeded hit, PUT 204, corrupt PUT 400)"
# A register-only placeholder keeps the fleet live so the submission
# queues for a worker lease instead of running on the local fallback.
curl -fsS "$DBASE/fleet/v1/register" -d '{"worker_id":"placeholder"}' >/dev/null \
    || dfail "placeholder registration failed"
RSUB=$(curl -fsS "$DBASE/v1/jobs" -d "$JOB")
RID=$(echo "$RSUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
RKEY=$(echo "$RSUB" | sed -n 's/.*"key":"\([^"]*\)".*/\1/p')
[ -n "$RID" ] || dfail "no job id in $RSUB"
echo "$RSUB" | grep -q '"cached":false' || dfail "fresh coordinator claimed a cache hit: $RSUB"
[ "$RKEY" = "$KEY" ] || dfail "content-addressed key drifted across processes: $RKEY vs $KEY"
SUM=$(sha256sum "$WORKDIR/ref.json" | cut -d' ' -f1)
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X PUT --data-binary "@$WORKDIR/ref.json" \
    -H "X-Nord-Sum: 0000000000000000000000000000000000000000000000000000000000000000" \
    "$DBASE/v1/cache/$RKEY")
[ "$CODE" = 400 ] || dfail "corrupt cache PUT returned $CODE, want 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X PUT --data-binary "@$WORKDIR/ref.json" \
    -H "X-Nord-Sum: $SUM" "$DBASE/v1/cache/$RKEY")
[ "$CODE" = 204 ] || dfail "cache PUT returned $CODE, want 204"

echo "== durable: starting worker w3 (tier defaults to the coordinator)"
"$BIN" -mode worker -coordinator "$DBASE" -worker-id w3 >"$W3LOG" 2>&1 &
W3_PID=$!
RSTATE=""
for _ in $(seq 1 100); do
    RSTATE=$(curl -fsS "$DBASE/v1/jobs/$RID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [ "$RSTATE" = done ] && break
    case "$RSTATE" in failed|canceled) dfail "seeded job ended in $RSTATE" ;; esac
    sleep 0.2
done
[ "$RSTATE" = done ] || dfail "seeded job stuck in state '$RSTATE'"
curl -fsS "$DBASE/metrics" | grep -q '^nord_cache_remote_hits_total [1-9]' \
    || dfail "worker served the seeded job without a remote cache hit"
echo "   remote tier verified: seeded payload served with zero simulation work"

echo "== durable: one short job done, one long job mid-flight"
SHORT_JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":20000,"seed":31}}'
LONG_JOB='{"kind":"synthetic","synthetic":{"design":"nord","width":4,"height":4,"pattern":"uniform","rate":0.05,"warmup":1000,"measure":1200000,"seed":33}}'
SSUB=$(curl -fsS "$DBASE/v1/jobs" -d "$SHORT_JOB")
SID=$(echo "$SSUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
SKEY=$(echo "$SSUB" | sed -n 's/.*"key":"\([^"]*\)".*/\1/p')
[ -n "$SID" ] || dfail "no short job id in $SSUB"
for _ in $(seq 1 150); do
    SSTATE=$(curl -fsS "$DBASE/v1/jobs/$SID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [ "$SSTATE" = done ] && break
    case "$SSTATE" in failed|canceled) dfail "short job ended in $SSTATE" ;; esac
    sleep 0.2
done
[ "$SSTATE" = done ] || dfail "short job stuck in state '$SSTATE'"
curl -fsS "$DBASE/v1/cache/$SKEY" -o "$WORKDIR/s_fleet.json" || dfail "short payload GET failed"
LSUB=$(curl -fsS "$DBASE/v1/jobs" -d "$LONG_JOB")
LID=$(echo "$LSUB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
LKEY=$(echo "$LSUB" | sed -n 's/.*"key":"\([^"]*\)".*/\1/p')
[ -n "$LID" ] || dfail "no long job id in $LSUB"
for _ in $(seq 1 100); do
    LSTATE=$(curl -fsS "$DBASE/v1/jobs/$LID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [ "$LSTATE" = running ] && break
    case "$LSTATE" in done|failed|canceled) dfail "long job finished ($LSTATE) before the kill could land" ;; esac
    sleep 0.1
done
[ "$LSTATE" = running ] || dfail "long job never started running"

echo "== durable: SIGKILL coordinator mid-job, restarting on $DADDR"
kill -KILL "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
COORD_PID=""
boot_durable "$DADDR"
echo "   restarted (pid $COORD_PID)"

echo "== durable: finished job replayed from the journal, byte-identical"
SSTATE=$(curl -fsS "$DBASE/v1/jobs/$SID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
[ "$SSTATE" = done ] || dfail "pre-crash done job replayed as '$SSTATE', want done"
curl -fsS "$DBASE/v1/cache/$SKEY" -o "$WORKDIR/s_after.json" || dfail "post-restart payload GET failed"
cmp -s "$WORKDIR/s_fleet.json" "$WORKDIR/s_after.json" \
    || dfail "replayed payload differs from the pre-crash bytes"

echo "== durable: in-flight job requeued and completed"
LSTATE=""
for _ in $(seq 1 240); do
    LSTATE=$(curl -fsS "$DBASE/v1/jobs/$LID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [ "$LSTATE" = done ] && break
    case "$LSTATE" in failed|canceled) dfail "recovered long job ended in $LSTATE" ;; esac
    sleep 0.5
done
[ "$LSTATE" = done ] || dfail "recovered long job stuck in state '$LSTATE'"
curl -fsS "$DBASE/v1/cache/$LKEY" -o "$WORKDIR/l_fleet.json" || dfail "long payload GET failed"

DMETRICS=$(curl -fsS "$DBASE/metrics")
echo "$DMETRICS" | grep -q '^nord_fleet_journal_appends_total [1-9]' \
    || dfail "journal recorded no appends"
echo "$DMETRICS" | grep -q '^nord_fleet_journal_replayed_jobs_total [1-9]' \
    || dfail "no terminal job replayed on recovery"
echo "$DMETRICS" | grep -q '^nord_fleet_journal_requeues_on_recovery_total [1-9]' \
    || dfail "the in-flight job was not requeued on recovery"
echo "   crash recovery verified: terminal jobs replayed, open job requeued"

echo "== durable: draining worker and coordinator"
kill -TERM "$W3_PID"
wait "$W3_PID" || dfail "w3 exited non-zero on drain"
W3_PID=""
kill -TERM "$COORD_PID"
wait "$COORD_PID" || dfail "coordinator exited non-zero on drain"
COORD_PID=""

echo "== durable: fleet results must match a fresh local-mode run"
RLOG="$WORKDIR/reference.log"
"$BIN" -addr 127.0.0.1:0 -workers 2 >"$RLOG" 2>&1 &
SRV_PID=$!
RADDR=""
for _ in $(seq 1 50); do
    RADDR=$(sed -n 's/^nordserved listening on //p' "$RLOG")
    [ -n "$RADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || dfail "reference server exited during startup"
    sleep 0.1
done
[ -n "$RADDR" ] || dfail "no reference server listen line"
RBASE="http://$RADDR"
for spec in "SHORT $SHORT_JOB $SKEY s_fleet" "LONG $LONG_JOB $LKEY l_fleet"; do
    name=$(echo "$spec" | cut -d' ' -f1)
    body=$(echo "$spec" | cut -d' ' -f2)
    key=$(echo "$spec" | cut -d' ' -f3)
    ref=$(echo "$spec" | cut -d' ' -f4)
    rid=$(curl -fsS "$RBASE/v1/jobs" -d "$body" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
    [ -n "$rid" ] || dfail "$name reference submission failed"
    rstate=""
    for _ in $(seq 1 240); do
        rstate=$(curl -fsS "$RBASE/v1/jobs/$rid" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
        [ "$rstate" = done ] && break
        case "$rstate" in failed|canceled) dfail "$name reference run ended in $rstate" ;; esac
        sleep 0.5
    done
    [ "$rstate" = done ] || dfail "$name reference run stuck in '$rstate'"
    curl -fsS "$RBASE/v1/cache/$key" -o "$WORKDIR/local_$name.json" \
        || dfail "$name reference payload GET failed"
    cmp -s "$WORKDIR/$ref.json" "$WORKDIR/local_$name.json" \
        || dfail "$name fleet result diverged from the local-mode reference run"
done
kill -TERM "$SRV_PID"
wait "$SRV_PID" || dfail "reference server exited non-zero on drain"
SRV_PID=""
echo "   byte-identity verified against a single-process run"

echo "SMOKE PASS"
