package nord_test

import (
	"testing"

	"nord"
	"nord/internal/noc"
)

// TestDefaultConfigMatchesPaperTable1 pins the library defaults to the
// paper's Table 1 simulation parameters.
func TestDefaultConfigMatchesPaperTable1(t *testing.T) {
	p := noc.DefaultParams(noc.NoRD)
	if p.Width != 4 || p.Height != 4 {
		t.Errorf("default mesh %dx%d, want 4x4", p.Width, p.Height)
	}
	if p.VCsPerClass != 4 {
		t.Errorf("VCs per class %d, want 4", p.VCsPerClass)
	}
	if p.BufferDepth != 5 {
		t.Errorf("input buffer depth %d, want 5 flits", p.BufferDepth)
	}
	if p.WakeupLatency != 12 {
		t.Errorf("wakeup latency %d, want 12 cycles (4ns at 3GHz)", p.WakeupLatency)
	}
	if p.EarlyWakeupCycles != 3 {
		t.Errorf("early wakeup %d, want 3 hidden cycles", p.EarlyWakeupCycles)
	}
	if p.WakeupWindow != 10 {
		t.Errorf("wakeup window %d, want 10 cycles", p.WakeupWindow)
	}
	if p.ThresholdPerf != 1 {
		t.Errorf("performance-centric threshold %d, want 1", p.ThresholdPerf)
	}
}

func TestPublicAPISynthetic(t *testing.T) {
	res, err := nord.RunSynthetic(nord.SynthConfig{
		Design: nord.NoRD, Rate: 0.05, Warmup: 2000, Measure: 10_000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Design != nord.NoRD || res.AvgPacketLatency <= 0 {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestPublicAPIWorkload(t *testing.T) {
	res, err := nord.RunWorkload(nord.WorkloadConfig{
		Design: nord.ConvPGOpt, Benchmark: "bodytrack", Scale: 0.02, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime == 0 {
		t.Error("no execution time measured")
	}
}

func TestPublicAPIHelpers(t *testing.T) {
	if len(nord.Benchmarks()) != 10 {
		t.Error("want 10 benchmarks")
	}
	if len(nord.Designs()) != 4 {
		t.Error("want 4 designs")
	}
	set, err := nord.PerfCentricSet(4, 4)
	if err != nil || len(set) != 6 {
		t.Errorf("perf-centric set %v (%v)", set, err)
	}
	m, err := nord.NewPowerModel(nord.DefaultTech())
	if err != nil {
		t.Fatal(err)
	}
	if m.RouterStaticW() <= 0 {
		t.Error("power model broken")
	}
	if nord.DefaultTech().NodeNM != 45 {
		t.Error("default tech should be 45nm")
	}
}
