// Command nordbench runs the PARSEC-like suite across the four designs
// and prints the Figure 8-12 tables, the Figure 3 idle-period analysis
// with -idle, or the tick-kernel regression benchmark with -kernel.
//
//	nordbench -scale 0.2          # 20% of the default instruction quota
//	nordbench -idle               # Section 3.2 idle-period statistics
//	nordbench -kernel             # write BENCH_kernel.json, fail on alloc regressions
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"nord/internal/noc"
	"nord/internal/sim"
)

// startProfiles begins CPU profiling and returns a function that stops it
// and writes the heap profile; the stop function must run before every
// process exit (os.Exit skips defers).
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}, nil
}

func main() {
	var (
		scale        = flag.Float64("scale", 0.2, "instruction-count scale (1.0 = 60k instructions/core)")
		seed         = flag.Int64("seed", 1, "random seed")
		idle         = flag.Bool("idle", false, "only run the No_PG idle-period analysis (Figure 3 / Section 3.2)")
		quiet        = flag.Bool("quiet", false, "suppress progress output")
		csvPath      = flag.String("csv", "", "also write the raw per-cell results to a CSV file")
		parallel     = flag.Bool("parallel", true, "run suite cells concurrently")
		kernel       = flag.Bool("kernel", false, "run the tick-kernel benchmark matrix (8x8 x designs x loads, plus the NoRD parallel-scaling meshes) and write a JSON report")
		kernelOut    = flag.String("kernel-out", "BENCH_kernel.json", "output path for the -kernel report")
		kernelCycles = flag.Int("kernel-cycles", 50_000, "measured cycles per -kernel point (scaling meshes run proportionally fewer)")
		cpus         = flag.Int("cpus", 0, "cap on the -kernel scaling matrix's shard counts (0 = full axis, 1 = serial only, negative = skip the scaling meshes)")
		baseline     = flag.String("baseline", "", "committed BENCH_kernel.json to compare the -kernel run against")
		tolerance    = flag.Float64("tolerance", 0.75, "fractional ns/cycle slowdown tolerated against -baseline (0.75 = +75%)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()

	fail := func(err error) {
		stopProfiles()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *kernel {
		// Load the baseline before the run: -kernel-out may point at the
		// same file, and CI does exactly that.
		var base *sim.KernelReport
		if *baseline != "" {
			f, err := os.Open(*baseline)
			if err != nil {
				fail(err)
			}
			base, err = sim.LoadKernelReport(f)
			f.Close()
			if err != nil {
				fail(err)
			}
		}
		progress := func(s string) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "kernel bench %s\n", s)
			}
		}
		rep, err := sim.KernelBenchP(*kernelCycles, *seed, *cpus, progress)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*kernelOut)
		if err != nil {
			fail(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("%-14s %8s %8s %4s %14s %14s %12s %8s\n",
			"design", "rate", "mesh", "P", "ns/cycle", "cycles/sec", "allocs/cyc", "speedup")
		for _, p := range rep.Points {
			w := p.Width
			if w == 0 {
				w = 8
			}
			par := p.Parallelism
			if par == 0 {
				par = 1
			}
			speedup := "-"
			if p.SpeedupVsSerial > 0 {
				speedup = fmt.Sprintf("%.2fx", p.SpeedupVsSerial)
			}
			fmt.Printf("%-14s %8.2f %7dx%-4d %2d %12.1f %14.0f %12.4f %8s\n",
				p.Design, p.Rate, w, w, par, p.NsPerCycle, p.CyclesPerSec, p.AllocsPerCycle, speedup)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *kernelOut)
		failed := false
		if bad := rep.Regressions(); len(bad) > 0 {
			failed = true
			for _, p := range bad {
				fmt.Fprintf(os.Stderr, "allocation regression: %s rate %.2f allocates %.4f/cycle (budget %.2f)\n",
					p.Design, p.Rate, p.AllocsPerCycle, p.Budget)
			}
		}
		if base != nil {
			bad, notices := rep.CompareBaseline(base, *tolerance)
			for _, msg := range notices {
				fmt.Fprintf(os.Stderr, "notice: %s\n", msg)
			}
			if len(bad) > 0 {
				failed = true
				for _, msg := range bad {
					fmt.Fprintf(os.Stderr, "baseline regression: %s\n", msg)
				}
			}
		}
		if failed {
			stopProfiles()
			os.Exit(1)
		}
		return
	}

	if *idle {
		rows, err := sim.Fig3IdlePeriods(*scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("Section 3.2 / Figure 3: router idleness under No_PG")
		fmt.Printf("%-14s %12s %22s\n", "benchmark", "idle frac", "idle periods <= BET")
		sum := 0.0
		for _, r := range rows {
			fmt.Printf("%-14s %11.1f%% %21.1f%%\n", r.Benchmark, 100*r.IdleFrac, 100*r.LEBETFrac)
			sum += r.LEBETFrac
		}
		fmt.Printf("%-14s %12s %21.1f%%   (paper: >61%%)\n", "AVG", "", 100*sum/float64(len(rows)))
		return
	}

	progress := func(s string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s\n", s)
		}
	}
	var sr *sim.SuiteResult
	if *parallel {
		sr, err = sim.ParallelSuite(*scale, *seed, progress)
	} else {
		sr, err = sim.RunSuite(*scale, *seed, progress)
	}
	if err != nil {
		fail(err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := sim.WriteSuiteCSV(f, sr); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}

	rows8, avg8 := sr.Fig8StaticEnergy()
	fmt.Print(sim.FormatMatrix("\nFigure 8: router static energy (normalised to No_PG)", rows8, sr.Benchmarks, avg8))

	rows9a, avg9a := sr.Fig9aOverheadEnergy()
	fmt.Print(sim.FormatMatrix("\nFigure 9(a): power-gating overhead energy (normalised to Conv_PG)", rows9a, sr.Benchmarks, avg9a))

	rows9b, avg9b := sr.Fig9bWakeups()
	fmt.Print(sim.FormatMatrix("\nFigure 9(b): router wakeups (normalised to Conv_PG)", rows9b, sr.Benchmarks, avg9b))

	fmt.Println("\nFigure 10: NoC energy breakdown (normalised to the No_PG total)")
	fmt.Printf("%-14s %-14s %10s %10s %10s %10s %10s %10s\n",
		"benchmark", "design", "rtr.stat", "rtr.dyn", "lnk.stat", "lnk.dyn", "overhead", "total")
	bd := sr.Fig10Breakdown()
	for _, b := range sr.Benchmarks {
		for _, d := range sim.FullDesigns() {
			e := bd[b][d]
			fmt.Printf("%-14s %-14s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				b, d, e.RouterStatic, e.RouterDynamic, e.LinkStatic, e.LinkDynamic, e.PGOverhead, e.Total())
		}
	}

	fmt.Println("\nFigure 11: average packet latency (cycles)")
	lat := sr.Fig11Latency()
	fmt.Print(sim.FormatMatrix("", lat, sr.Benchmarks, nil))
	inc := sr.LatencyIncreaseAvg()
	fmt.Printf("average increase over No_PG: Conv_PG %+.1f%%  Conv_PG_OPT %+.1f%%  NoRD %+.1f%%  (paper: +63.8%% / +41.5%% / +15.2%%)\n",
		100*inc[noc.ConvPG], 100*inc[noc.ConvPGOpt], 100*inc[noc.NoRD])

	rows12, avg12 := sr.Fig12ExecTime()
	fmt.Print(sim.FormatMatrix("\nFigure 12: execution time (normalised to No_PG)", rows12, sr.Benchmarks, avg12))
	fmt.Printf("(paper: Conv_PG +11.7%%, Conv_PG_OPT +8.1%%, NoRD +3.9%%)\n")
}
