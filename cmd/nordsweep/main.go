// Command nordsweep regenerates the paper's sweep figures:
//
//	nordsweep -fig7    bypass-ring threshold determination (Figure 7)
//	nordsweep -fig13   latency vs wakeup latency (Figure 13)
//	nordsweep -fig14   16-node latency & power vs load (Figure 14)
//	nordsweep -fig15   64-node uniform + bit-complement sweeps (Figure 15)
//
// Each prints the series the corresponding figure plots.
package main

import (
	"flag"
	"fmt"
	"os"

	"nord/internal/noc"
	"nord/internal/sim"
)

func main() {
	var (
		fig7       = flag.Bool("fig7", false, "Figure 7: forced-off ring latency and VC-request metric vs load")
		thresholds = flag.Bool("thresholds", false, "Section 6.1 companion: symmetric wakeup-threshold sensitivity")
		fig13      = flag.Bool("fig13", false, "Figure 13: latency vs wakeup latency")
		fig14      = flag.Bool("fig14", false, "Figure 14: 16-node load sweep (latency and power)")
		fig15      = flag.Bool("fig15", false, "Figure 15: 64-node load sweeps (uniform and bit-complement)")
		measure    = flag.Int("measure", 100_000, "measured cycles per point")
		seed       = flag.Int64("seed", 1, "random seed")
		rate       = flag.Float64("rate", 0.05, "load for -fig13 (flits/node/cycle)")
		csvOut     = flag.Bool("csv", false, "emit CSV instead of tables")
		parallel   = flag.Bool("parallel", true, "run sweep points concurrently")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *fig7:
		rates := []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10}
		pts, err := sim.Fig7WakeupThreshold(rates, *measure, *seed)
		if err != nil {
			fail(err)
		}
		if *csvOut {
			if err := sim.WriteFig7CSV(os.Stdout, pts); err != nil {
				fail(err)
			}
			return
		}
		fmt.Println("Figure 7: all routers forced off; traffic on the Bypass Ring only")
		fmt.Printf("%10s %12s %12s %18s\n", "rate", "latency", "throughput", "VCreq/10cycles")
		for _, p := range pts {
			fmt.Printf("%10.3f %12.1f %12.4f %18.2f\n", p.Rate, p.AvgLatency, p.Throughput, p.VCReqWindow)
		}
		fmt.Println("\nthresholds 1..5 are crossed where the last column passes those values;")
		fmt.Println("the ring saturates at a small fraction of full-network throughput (paper: ~14%).")

	case *fig13:
		pts, err := sim.Fig13WakeupLatency([]int{9, 12, 15, 18}, *rate, *measure, *seed)
		if err != nil {
			fail(err)
		}
		if *csvOut {
			if err := sim.WriteFig13CSV(os.Stdout, pts); err != nil {
				fail(err)
			}
			return
		}
		fmt.Printf("Figure 13: average latency vs wakeup latency (uniform random @ %.2f)\n", *rate)
		fmt.Printf("%-14s %8s %8s %8s %8s\n", "design", "wl=9", "wl=12", "wl=15", "wl=18")
		for _, d := range []noc.Design{noc.ConvPG, noc.ConvPGOpt, noc.NoRD} {
			fmt.Printf("%-14s", d)
			for _, wl := range []int{9, 12, 15, 18} {
				for _, p := range pts {
					if p.Design == d && p.WakeupLatency == wl {
						fmt.Printf(" %8.1f", p.AvgLatency)
					}
				}
			}
			fmt.Println()
		}

	case *fig14:
		rates := []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}
		printSweep("Figure 14: 16-node uniform random", 4, 4, "uniform", rates, *measure, *seed, *csvOut, *parallel, fail)

	case *fig15:
		rates := []float64{0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30}
		printSweep("Figure 15 (left): 64-node uniform random", 8, 8, "uniform", rates, *measure, *seed, *csvOut, *parallel, fail)
		bc := []float64{0.01, 0.03, 0.05, 0.08, 0.10, 0.12, 0.15}
		printSweep("Figure 15 (right): 64-node bit complement", 8, 8, "bitcomp", bc, *measure, *seed, *csvOut, *parallel, fail)

	case *thresholds:
		pts, err := sim.ThresholdSensitivity([]int{1, 2, 3, 4, 5, 8}, []float64{0.02, 0.05, 0.08}, *measure, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("Section 6.1 companion: symmetric wakeup thresholds on NoRD")
		fmt.Printf("%10s %8s %12s %10s %10s\n", "threshold", "rate", "latency", "wakeups", "power(W)")
		for _, p := range pts {
			fmt.Printf("%10d %8.3f %12.1f %10d %10.2f\n", p.Threshold, p.Rate, p.AvgLatency, p.Wakeups, p.PowerW)
		}

	default:
		flag.Usage()
	}
}

func printSweep(title string, w, h int, pattern string, rates []float64, measure int, seed int64, csvOut, parallel bool, fail func(error)) {
	var pts []sim.SweepPoint
	var err error
	if parallel {
		pts, err = sim.ParallelLoadSweep(w, h, pattern, rates, measure, seed)
	} else {
		pts, err = sim.LoadSweep(w, h, pattern, rates, measure, seed)
	}
	if err != nil {
		fail(err)
	}
	if csvOut {
		if err := sim.WriteSweepCSV(os.Stdout, pts); err != nil {
			fail(err)
		}
		return
	}
	fmt.Println(title)
	fmt.Printf("%-14s %8s %12s %10s %12s %5s\n", "design", "rate", "latency", "power(W)", "throughput", "sat")
	for _, p := range pts {
		sat := ""
		if p.Saturated {
			sat = "*"
		}
		fmt.Printf("%-14s %8.3f %12.1f %10.2f %12.4f %5s\n", p.Design, p.Rate, p.AvgLatency, p.PowerW, p.Throughput, sat)
	}
	fmt.Println()
}
