// Command nordtrace records and replays network traffic traces, the
// standard trace-driven methodology for comparing designs on identical
// traffic:
//
//	nordtrace -record -benchmark x264 -scale 0.2 -o x264.trace.gz
//	nordtrace -replay x264.trace.gz                 # all four designs
//	nordtrace -replay x264.trace.gz -design nord    # one design, full report
package main

import (
	"flag"
	"fmt"
	"os"

	"nord/internal/noc"
	"nord/internal/sim"
	"nord/internal/trace"
)

func main() {
	var (
		record    = flag.Bool("record", false, "record a workload trace")
		benchmark = flag.String("benchmark", "x264", "workload to record")
		scale     = flag.Float64("scale", 0.2, "instruction-count scale for recording")
		out       = flag.String("o", "out.trace.gz", "output trace file")
		replay    = flag.String("replay", "", "trace file to replay")
		design    = flag.String("design", "", "replay on a single design (default: compare all four)")
		warmup    = flag.Int("warmup", 0, "replay warmup cycles excluded from measurement")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *record:
		tr, res, err := sim.RecordWorkloadTrace(sim.WorkloadConfig{
			Design: noc.NoPG, Benchmark: *benchmark, Scale: *scale, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		if err := tr.Save(*out); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %d packets over %d cycles from %s (No_PG) into %s\n",
			len(tr.Events), res.ExecTime, *benchmark, *out)

	case *replay != "":
		tr, err := trace.Load(*replay)
		if err != nil {
			fail(err)
		}
		designs := sim.FullDesigns()
		if *design != "" {
			d, err := noc.DesignByName(*design)
			if err != nil {
				fail(err)
			}
			designs = []noc.Design{d}
		}
		fmt.Printf("replaying %d packets (%d nodes) from %s\n\n", len(tr.Events), tr.Nodes, *replay)
		// A structured runtime failure (deadlock, replay timeout) still
		// carries partial statistics in the Result; print what was
		// measured, then exit non-zero so scripts notice the failure.
		failed := false
		if len(designs) == 1 {
			res, err := sim.ReplayTrace(sim.TraceConfig{Design: designs[0], Path: *replay, Warmup: *warmup, Seed: *seed}, tr)
			if err != nil && res.Err == "" {
				fail(err)
			}
			fmt.Print(sim.FormatResult(res))
			if res.Err != "" {
				fmt.Fprintf(os.Stderr, "replay failed: %s\n", res.Err)
				os.Exit(2)
			}
			return
		}
		fmt.Printf("%-14s %10s %10s %12s %10s %10s\n", "design", "latency", "wakeups", "static(uJ)", "off%", "power(W)")
		for _, d := range designs {
			res, err := sim.ReplayTrace(sim.TraceConfig{Design: d, Path: *replay, Warmup: *warmup, Seed: *seed}, tr)
			if err != nil && res.Err == "" {
				fail(err)
			}
			if res.Err != "" {
				failed = true
				fmt.Printf("%-14s %10s  %s\n", d, "FAILED", res.Err)
				continue
			}
			fmt.Printf("%-14s %10.1f %10d %12.3f %9.0f%% %10.2f\n",
				d, res.AvgPacketLatency, res.Wakeups, res.Energy.RouterStatic*1e6, 100*res.OffFraction, res.AvgPowerW)
		}
		if failed {
			os.Exit(2)
		}

	default:
		flag.Usage()
	}
}
