// Command nordfault runs the graceful-degradation experiment: the same
// seeded traffic is simulated with 0..max-fails permanently failed
// routers (plus optional transient faults) under each design, and the
// resulting delivery rate and latency are tabulated. NoRD keeps every
// node attached through the non-gated bypass ring, so it degrades
// gracefully; conventional designs partition and their cells report a
// structured deadlock error instead of crashing.
//
// Examples:
//
//	nordfault                                  # 8x8 mesh, 0..6 failed routers, all designs
//	nordfault -max-fails 3 -designs nord       # NoRD only
//	nordfault -corrupt 20 -drop-wakeups 4      # add transient faults
//	nordfault -csv > degradation.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nord/internal/noc"
	"nord/internal/sim"
)

func main() {
	var (
		width       = flag.Int("width", 8, "router-grid width")
		height      = flag.Int("height", 8, "router-grid height")
		topo        = flag.String("topology", "mesh", "interconnect: mesh, torus or cmesh (4 terminals/router)")
		pattern     = flag.String("pattern", "uniform", "synthetic pattern: uniform, bitcomp, transpose, tornado")
		rate        = flag.Float64("rate", 0.05, "synthetic injection rate (flits/node/cycle)")
		measure     = flag.Int("measure", 30_000, "measured cycles per cell")
		seed        = flag.Int64("seed", 1, "random seed (also seeds the fault schedules)")
		maxFails    = flag.Int("max-fails", 6, "largest number of hard-failed routers (cells run 0..N)")
		stuckOff    = flag.Int("stuck-off", 0, "stuck-off router faults per faulty cell")
		dropWakeups = flag.Int("drop-wakeups", 0, "dropped wakeup-handshake faults per faulty cell")
		corrupt     = flag.Int("corrupt", 0, "transient link-corruption faults per faulty cell")
		designs     = flag.String("designs", "", "comma-separated subset (no_pg,conv_pg,conv_pg_opt,nord); default all")
		csvOut      = flag.Bool("csv", false, "emit CSV instead of the table")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := sim.DegradationConfig{
		Width: *width, Height: *height, Topology: *topo,
		Pattern: *pattern, Rate: *rate, Measure: *measure, Seed: *seed,
		MaxFails:     *maxFails,
		StuckOff:     *stuckOff,
		DropWakeups:  *dropWakeups,
		CorruptLinks: *corrupt,
	}
	if *designs != "" {
		for _, name := range strings.Split(*designs, ",") {
			d, err := noc.DesignByName(name)
			if err != nil {
				fail(err)
			}
			cfg.Designs = append(cfg.Designs, d)
		}
	}

	pts, err := sim.DegradationSweep(cfg)
	if err != nil {
		fail(err)
	}
	if *csvOut {
		if err := sim.WriteDegradationCSV(os.Stdout, pts); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("Graceful degradation: %dx%d %s, %s @ %.3f, %d measured cycles, seed %d\n",
		*width, *height, *topo, *pattern, *rate, *measure, *seed)
	if *stuckOff+*dropWakeups+*corrupt > 0 {
		fmt.Printf("transients per faulty cell: %d stuck-off, %d dropped wakeups, %d corrupt links\n",
			*stuckOff, *dropWakeups, *corrupt)
	}
	fmt.Println()
	fmt.Print(sim.FormatDegradation(pts))
}
