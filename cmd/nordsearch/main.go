// Command nordsearch submits a design-space search spec to a nordserved
// instance (POST /v1/search), streams per-generation progress, and
// renders the resulting Pareto front.
//
// Usage:
//
//	nordsearch -server http://localhost:8080 -spec search.json
//	nordsearch -server ... -spec - -format csv < spec.json > front.csv
//	nordsearch -server ... -spec spec.json -format front   # raw front JSON,
//	    byte-identical across runs for a fixed seed
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"nord/internal/search"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "nordserved base URL")
	specPath := flag.String("spec", "", "search spec JSON file (\"-\" = stdin); empty submits the default spec")
	format := flag.String("format", "table", "output format: table, json (full result), front (raw front JSON), csv")
	quiet := flag.Bool("quiet", false, "suppress the per-generation progress stream on stderr")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget (0 = none)")
	flag.Parse()

	switch *format {
	case "table", "json", "front", "csv":
	default:
		fmt.Fprintf(os.Stderr, "nordsearch: unknown format %q\n", *format)
		os.Exit(2)
	}
	spec, err := readSpec(*specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nordsearch: %v\n", err)
		os.Exit(2)
	}
	client := &http.Client{}
	if *timeout > 0 {
		client.Timeout = *timeout
	}

	id, err := submit(client, *server, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nordsearch: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "nordsearch: job %s submitted\n", id)
		streamEvents(client, *server, id)
	} else {
		waitDone(client, *server, id)
	}

	res, err := fetchResult(client, *server, id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nordsearch: %v\n", err)
		os.Exit(1)
	}
	if err := render(os.Stdout, *format, res); err != nil {
		fmt.Fprintf(os.Stderr, "nordsearch: %v\n", err)
		os.Exit(1)
	}
	if *format == "table" && !*quiet {
		fmt.Fprintf(os.Stderr, "nordsearch: %d evaluations (%d cached), %d infeasible, front size %d\n",
			res.Stats.Evaluations, res.Stats.CacheHits, res.Stats.Infeasible, len(res.Points))
	}
}

func readSpec(path string) ([]byte, error) {
	switch path {
	case "":
		return []byte("{}"), nil
	case "-":
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// searchResult is the job result with the front kept raw: the "front"
// bytes are the determinism unit (byte-identical across runs for a fixed
// seed), so they must reach the output untouched by a re-marshal.
type searchResult struct {
	Result json.RawMessage // whole result, raw
	Front  json.RawMessage
	Points []search.Point
	Stats  search.Stats
}

func submit(client *http.Client, server string, spec []byte) (string, error) {
	resp, err := client.Post(server+"/v1/search", "application/json", bytes.NewReader(spec))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit failed: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		return "", fmt.Errorf("bad submit response: %s", bytes.TrimSpace(body))
	}
	return sub.ID, nil
}

// streamEvents tails the job's NDJSON progress stream, printing one line
// per generation; it returns when the stream ends (job terminal). Errors
// are non-fatal — the final status fetch decides the outcome.
func streamEvents(client *http.Client, server, id string) {
	resp, err := client.Get(server + "/v1/jobs/" + id + "/events")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var ev struct {
			Done        bool   `json:"done"`
			State       string `json:"state"`
			Error       string `json:"error"`
			Phase       string `json:"phase"`
			Generation  int    `json:"generation"`
			Generations int    `json:"generations"`
			Evaluations int    `json:"evaluations"`
			CacheHits   int    `json:"cache_hits"`
			FrontSize   int    `json:"front_size"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) != nil {
			continue
		}
		switch {
		case ev.Done:
			fmt.Fprintf(os.Stderr, "nordsearch: job %s %s %s\n", id, ev.State, ev.Error)
			return
		case ev.Phase == "generation":
			fmt.Fprintf(os.Stderr, "nordsearch: generation %d/%d: %d evaluations (%d cached), front %d\n",
				ev.Generation, ev.Generations, ev.Evaluations, ev.CacheHits, ev.FrontSize)
		}
	}
}

// waitDone polls the job status until it is terminal (quiet mode).
func waitDone(client *http.Client, server, id string) {
	for {
		resp, err := client.Get(server + "/v1/jobs/" + id)
		if err != nil {
			return
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return
		}
		switch st.State {
		case "done", "failed", "canceled":
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fetchResult(client *http.Client, server, id string) (*searchResult, error) {
	resp, err := client.Get(server + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st struct {
		State  string          `json:"state"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	if st.State != "done" {
		return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
	}
	var raw struct {
		Front json.RawMessage `json:"front"`
		Stats search.Stats    `json:"stats"`
	}
	if err := json.Unmarshal(st.Result, &raw); err != nil {
		return nil, fmt.Errorf("decode result: %w", err)
	}
	out := &searchResult{Front: raw.Front, Stats: raw.Stats}
	out.Result = st.Result
	if err := json.Unmarshal(raw.Front, &out.Points); err != nil {
		return nil, fmt.Errorf("decode front: %w", err)
	}
	return out, nil
}

func render(w io.Writer, format string, res *searchResult) error {
	switch format {
	case "front":
		_, err := fmt.Fprintf(w, "%s\n", res.Front)
		return err
	case "json":
		_, err := fmt.Fprintf(w, "%s\n", res.Result)
		return err
	case "csv":
		return search.WriteFrontCSV(w, res.Points)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DESIGN\tWIDTH\tVCS\tDEPTH\tGATE\tWAKE\tRATE\tLATENCY\tE/FLIT(pJ)\tAREA(mm2)\tGEN")
	for _, p := range res.Points {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.3f\t%.2f\t%.3f\t%.3f\t%d\n",
			p.Config.Design, p.Config.Width, p.Config.VCs, p.Config.BufferDepth,
			p.Config.GateIdle, p.Config.WakeThreshold, p.Config.Rate,
			p.Objectives.LatencyCycles, p.Objectives.EnergyPerFlitPJ,
			p.Objectives.AreaMM2, p.Generation)
	}
	return tw.Flush()
}
