// Command nordsim runs a single NoC simulation — synthetic traffic or a
// PARSEC-like full-system workload — under one of the four power-gating
// designs and prints the measurements and energy accounting.
//
// Examples:
//
//	nordsim -design nord -rate 0.05                 # uniform random, 4x4
//	nordsim -design conv_pg_opt -benchmark x264     # full-system run
//	nordsim -print-config                           # Table 1 parameters
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"nord/internal/noc"
	"nord/internal/obs"
	"nord/internal/sim"
)

// writeTrace dumps a finished run's tracer: Chrome trace-event JSON
// (open in ui.perfetto.dev) by default, NDJSON when the path ends in
// .ndjson.
func writeTrace(path string, tr *obs.Tracer, endCycle uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".ndjson") {
		err = tr.WriteNDJSON(f)
	} else {
		err = tr.WriteChromeTrace(f, endCycle)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// startProfiles begins CPU profiling and returns a function that stops it
// and writes the heap profile; the stop function must run before every
// process exit (os.Exit skips defers).
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}, nil
}

func main() {
	var (
		design      = flag.String("design", "nord", "no_pg, conv_pg, conv_pg_opt or nord")
		pattern     = flag.String("pattern", "uniform", "synthetic pattern: uniform, bitcomp, transpose, tornado")
		rate        = flag.Float64("rate", 0.05, "synthetic injection rate (flits/node/cycle)")
		benchmark   = flag.String("benchmark", "", "run a PARSEC-like workload instead of synthetic traffic")
		scale       = flag.Float64("scale", 1.0, "workload instruction-count scale")
		topo        = flag.String("topology", "mesh", "interconnect: mesh, torus or cmesh (4 terminals/router)")
		width       = flag.Int("width", 4, "router-grid width")
		height      = flag.Int("height", 4, "router-grid height")
		warmup      = flag.Int("warmup", 10_000, "warmup cycles")
		measure     = flag.Int("measure", 100_000, "measured cycles (synthetic)")
		wakeup      = flag.Int("wakeup", 12, "router wakeup latency in cycles")
		seed        = flag.Int64("seed", 1, "random seed")
		forcedOff   = flag.Bool("forced-off", false, "force every router asleep (Figure 7 mode)")
		twoStage    = flag.Bool("two-stage", false, "2-stage router pipeline (Section 6.8)")
		aggressive  = flag.Bool("aggressive-bypass", false, "1-cycle NoRD bypass (Section 6.8)")
		dynClass    = flag.Bool("dynamic-classify", false, "demand-ranked performance-centric class (Section 4.4)")
		csvOut      = flag.Bool("csv", false, "emit a CSV record instead of the report")
		tracePath   = flag.String("trace", "", "write a cycle-level event trace to this file (Chrome trace-event JSON for Perfetto; NDJSON when the path ends in .ndjson)")
		traceSample = flag.Int("trace-sample", 0, "record every Nth bypass hop in the trace (0 = the default 64)")
		perRouter   = flag.Bool("per-router", false, "append the per-router spatial statistics table")
		powerTrace  = flag.Int("power-trace", 0, "emit a power time series sampled every N cycles (CSV) instead of the report")
		watch       = flag.Int("watch", 0, "render router power-state frames every N cycles instead of the report")
		printConfig = flag.Bool("print-config", false, "print the Table 1 default configuration and exit")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		cpus        = flag.Int("cpus", 0, "tick-kernel shard count (0 or 1 = serial; results are bit-identical at any value)")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()
	fail := func(err error) {
		stopProfiles()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *printConfig {
		p := noc.DefaultParams(noc.NoRD)
		fmt.Println("Table 1 configuration (defaults):")
		fmt.Printf("  network topology   %dx%d mesh (also 8x8 via -width/-height)\n", p.Width, p.Height)
		fmt.Printf("  router             4-stage (RC,VA,SA,ST) + LT, 3GHz\n")
		fmt.Printf("  virtual channels   %d per protocol class\n", p.VCsPerClass)
		fmt.Printf("  input buffers      %d-flit depth\n", p.BufferDepth)
		fmt.Printf("  link bandwidth     128 bits/cycle (1 flit)\n")
		fmt.Printf("  wakeup latency     %d cycles (4ns at 3GHz)\n", p.WakeupLatency)
		fmt.Printf("  early wakeup       %d cycles hidden (Conv_PG_OPT)\n", p.EarlyWakeupCycles)
		fmt.Printf("  wakeup window      %d cycles, thresholds perf=%d power=%d\n", p.WakeupWindow, p.ThresholdPerf, p.ThresholdPower)
		fmt.Printf("  misroute cap       %d hops before the escape ring\n", p.MisrouteCap)
		fmt.Printf("  memory (workload)  L1 32KB/2-way 1cy; L2 256KB/16-way banks 6cy; MOESI-style MSI directory; 4 corner memory controllers, 128cy\n")
		return
	}

	d, err := noc.DesignByName(*design)
	if err != nil {
		fail(err)
	}
	if *rate < 0 || *rate > 1 {
		fail(fmt.Errorf("rate %g outside [0, 1] flits/node/cycle", *rate))
	}
	if *width < 2 || *height < 2 {
		fail(fmt.Errorf("mesh must be at least 2x2, got %dx%d", *width, *height))
	}
	if *measure <= 0 {
		fail(fmt.Errorf("measure must be positive, got %d", *measure))
	}
	// The flag default is the paper's warmup, so a 0 on the command line
	// is always an explicit request for no warmup.
	if *warmup == 0 {
		*warmup = sim.ZeroWarmup
	}
	if *watch > 0 {
		frames := *measure / *watch
		if frames < 1 {
			frames = 1
		}
		err := sim.WatchStates(sim.SynthConfig{
			Design: d, Width: *width, Height: *height, Topology: *topo,
			Pattern: *pattern, Rate: *rate,
			Warmup: *warmup, Seed: *seed, WakeupLatency: *wakeup,
			ForcedOff: *forcedOff, TwoStageRouter: *twoStage,
			AggressiveBypass: *aggressive, DynamicClassify: *dynClass,
		}, *watch, frames, os.Stdout)
		if err != nil {
			fail(err)
		}
		return
	}
	if *powerTrace > 0 {
		samples, err := sim.PowerTimeSeries(sim.SynthConfig{
			Design: d, Width: *width, Height: *height, Topology: *topo,
			Pattern: *pattern, Rate: *rate,
			Warmup: *warmup, Measure: *measure,
			Seed: *seed, WakeupLatency: *wakeup, ForcedOff: *forcedOff,
			TwoStageRouter: *twoStage, AggressiveBypass: *aggressive,
			DynamicClassify: *dynClass,
		}, *powerTrace)
		if err != nil {
			fail(err)
		}
		if err := sim.WritePowerSeriesCSV(os.Stdout, samples); err != nil {
			fail(err)
		}
		return
	}
	var opt sim.RunOptions
	if *cpus < 0 {
		fail(fmt.Errorf("cpus must be non-negative, got %d", *cpus))
	}
	opt.Parallelism = *cpus
	if *tracePath != "" {
		opt.Tracer = obs.New(obs.Config{SampleEvery: *traceSample})
	}
	var res sim.Result
	if *benchmark != "" {
		if *topo != "" && *topo != "mesh" {
			// Refuse rather than silently running the workload on a mesh.
			fail(fmt.Errorf("full-system workloads support only the mesh topology, got %q", *topo))
		}
		res, err = sim.RunWorkloadOpts(context.Background(), sim.WorkloadConfig{
			Design: d, Benchmark: *benchmark, Scale: *scale,
			Warmup: *warmup, Seed: *seed, WakeupLatency: *wakeup,
		}, opt)
	} else {
		res, err = sim.RunSyntheticOpts(context.Background(), sim.SynthConfig{
			Design: d, Width: *width, Height: *height, Topology: *topo,
			Pattern: *pattern, Rate: *rate,
			Warmup: *warmup, Measure: *measure,
			Seed: *seed, WakeupLatency: *wakeup, ForcedOff: *forcedOff,
			TwoStageRouter: *twoStage, AggressiveBypass: *aggressive,
			DynamicClassify: *dynClass,
		}, opt)
	}
	if err != nil {
		fail(err)
	}
	if opt.Tracer != nil {
		if err := writeTrace(*tracePath, opt.Tracer, res.Cycles); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events (%d dropped) -> %s\n",
			opt.Tracer.Total(), opt.Tracer.Dropped(), *tracePath)
	}
	if *csvOut {
		w := csv.NewWriter(os.Stdout)
		if err := w.Write(sim.ResultCSVHeader()); err == nil {
			_ = w.Write(sim.ResultCSVRecord(res))
		}
		w.Flush()
		return
	}
	fmt.Print(sim.FormatResult(res))
	if *perRouter {
		fmt.Println()
		fmt.Print(sim.FormatPerRouter(res))
	}
}
