// Command nordplan runs the offline Floyd-Warshall planner of Section 4.4:
// it prints the Figure 6 trade-off curve (average node-to-node distance
// and per-hop latency versus the number of powered-on routers) and the
// selected performance-centric router set.
//
//	nordplan                 # the paper's 4x4 mesh
//	nordplan -width 8 -height 8 -k 24
package main

import (
	"flag"
	"fmt"
	"os"

	"nord/internal/topology"
)

func main() {
	var (
		width  = flag.Int("width", 4, "router-grid width")
		height = flag.Int("height", 4, "router-grid height")
		topoN  = flag.String("topology", "mesh", "interconnect: mesh, torus or cmesh")
		k      = flag.Int("k", 0, "performance-centric set size (0 = 3N/8, the paper's 6-of-16 ratio)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	kind, err := topology.KindByName(*topoN)
	if err != nil {
		fail(err)
	}
	mesh, err := topology.New(kind, *width, *height)
	if err != nil {
		fail(err)
	}
	ring, err := topology.NewRing(mesh)
	if err != nil {
		fail(err)
	}
	pl := topology.NewPlanner(mesh, ring)

	if mesh.N() <= 16 {
		pts, err := pl.Tradeoff()
		if err != nil {
			fail(err)
		}
		fmt.Printf("Figure 6: %dx%d %v, bypass ring %v\n", *width, *height, kind, ring.Order())
		fmt.Printf("%6s %16s %16s\n", "on", "avg distance", "per-hop latency")
		for _, p := range pts {
			fmt.Printf("%6d %16.3f %16.3f\n", p.K, p.AvgHops, p.PerHopCycles)
		}
	} else {
		fmt.Printf("%dx%d mesh: exhaustive search infeasible; greedy selection only\n", *width, *height)
	}

	kk := *k
	if kk == 0 {
		kk = 3 * mesh.N() / 8
	}
	var set []int
	if mesh.N() <= 16 {
		set, err = pl.PerformanceCentric(kk)
	} else {
		set, err = pl.GreedySet(kk)
	}
	if err != nil {
		fail(err)
	}
	on := make([]bool, mesh.N())
	for _, v := range set {
		on[v] = true
	}
	hops, perHop, err := pl.Eval(on)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nperformance-centric set (K=%d): %v\n", kk, set)
	fmt.Printf("avg distance %.3f hops, per-hop latency %.3f cycles\n", hops, perHop)
}
