// Command nordpower prints the power-model reproductions of Figure 1 and
// the Section 6.8 area comparison.
//
//	nordpower            # Figure 1(a) and 1(b)
//	nordpower -area      # Section 6.8 router area table
package main

import (
	"flag"
	"fmt"
	"os"

	"nord/internal/sim"
)

func main() {
	area := flag.Bool("area", false, "print the Section 6.8 area comparison")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *area {
		rows, err := sim.AreaTable()
		if err != nil {
			fail(err)
		}
		fmt.Println("Section 6.8: router area at 45nm")
		fmt.Printf("%-14s %12s %10s %10s\n", "design", "area (mm^2)", "vs No_PG", "vs OPT")
		for _, r := range rows {
			fmt.Printf("%-14s %12.4f %+9.1f%% %+9.1f%%\n", r.Design, r.AreaMM2, 100*r.VsNoPG, 100*r.VsOpt)
		}
		fmt.Println("(paper: NoRD +3.1% vs Conv_PG_OPT)")
		return
	}

	pts, err := sim.Fig1aStaticShare()
	if err != nil {
		fail(err)
	}
	fmt.Println("Figure 1(a): router static power share at PARSEC-average load")
	fmt.Printf("%8s %8s %14s\n", "node", "voltage", "static share")
	for _, p := range pts {
		fmt.Printf("%6dnm %7.1fV %13.1f%%\n", p.NodeNM, p.Voltage, 100*p.StaticShare)
	}
	fmt.Println("(paper anchors: 17.9% @65nm/1.2V, 35.4% @45nm/1.1V, 47.7% @32nm/1.0V)")

	keys, vals, err := sim.Fig1bBreakdown()
	if err != nil {
		fail(err)
	}
	fmt.Println("\nFigure 1(b): router power decomposition at 45nm/1.0V")
	for i, k := range keys {
		fmt.Printf("%-16s %6.1f%%\n", k, 100*vals[i])
	}
	fmt.Println("(paper: dynamic 62%, buffer 21%, VA 7%, xbar 5%, clock 4%, SA 2%)")
}
