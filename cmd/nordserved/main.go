// Command nordserved serves NoC simulations over HTTP: jobs are
// submitted as JSON, scheduled on a bounded worker pool, and memoized in
// a content-addressed result cache so identical configurations are
// simulated exactly once.
//
// It runs in one of three modes:
//
//	-mode local        single process (the default): jobs execute on an
//	                   in-process worker pool.
//	-mode coordinator  owns the queue and cache, leases jobs to fleet
//	                   workers over /fleet/v1/*, and degrades to local
//	                   execution when no worker is registered.
//	-mode worker       registers with -coordinator, leases jobs,
//	                   heartbeats while executing, and reports results.
//
//	nordserved -addr :8080 -workers 4 -cache-dir /var/cache/nord
//	nordserved -mode coordinator -addr :8080 -lease-ttl 10s
//	nordserved -mode worker -coordinator http://host:8080 -slots 4
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"synthetic","synthetic":{"design":"nord","rate":0.05}}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -sN localhost:8080/v1/jobs/j000001/events
//	curl -s localhost:8080/metrics
//
// On SIGTERM/SIGINT a server drains: intake stops (503), queued and
// running jobs get -drain-timeout to finish, then stragglers are
// canceled cooperatively through the sim layer's context polling. A
// worker gives unfinished jobs back to the coordinator so they requeue
// immediately instead of waiting out their lease TTL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nord/internal/fleet"
	"nord/internal/serve"
)

func main() {
	var (
		mode         = flag.String("mode", "local", "local | coordinator | worker")
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS; coordinator mode: local fallback pool size, default 1)")
		queue        = flag.Int("queue", 64, "queued-job limit before submissions get 429")
		cacheEntries = flag.Int("cache-entries", 512, "in-memory result cache capacity")
		cacheDir     = flag.String("cache-dir", "", "directory for on-disk cache spill (empty disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
		jobDeadline  = flag.Duration("job-deadline", 0, "per-job wall-clock execution budget (0 = unbounded)")

		// Coordinator-mode flags.
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "coordinator: lease TTL (un-heartbeated leases requeue after this)")
		maxAttempts = flag.Int("max-attempts", 4, "coordinator: lease grants per job before it is failed")
		retryBase   = flag.Duration("retry-base", 250*time.Millisecond, "coordinator: requeue backoff base")
		retryMax    = flag.Duration("retry-max", 5*time.Second, "coordinator: requeue backoff cap")
		journalDir  = flag.String("journal-dir", "", "coordinator: job journal directory — makes the coordinator crash-durable (empty disables)")

		// Worker-mode flags.
		coordinator = flag.String("coordinator", "", "worker: coordinator base URL (http://host:port)")
		workerID    = flag.String("worker-id", "", "worker: fleet identity (default hostname-pid)")
		slots       = flag.Int("slots", 1, "worker: jobs executed in parallel")
		cacheTier   = flag.String("cache-tier", "", "worker: remote cache tier base URL (default the coordinator; \"none\" disables)")
	)
	flag.Parse()

	switch *mode {
	case "worker":
		os.Exit(runWorker(*coordinator, *workerID, *slots, *cacheTier))
	case "local", "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "nordserved: unknown -mode %q (local, coordinator, worker)\n", *mode)
		os.Exit(2)
	}

	cfg := serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		JobDeadline:  *jobDeadline,
	}
	var coord *fleet.Coordinator
	if *mode == "coordinator" {
		localWorkers := *workers
		if localWorkers == 0 {
			localWorkers = 1
		}
		var journal *fleet.Journal
		if *journalDir != "" {
			var err error
			journal, err = fleet.OpenJournal(*journalDir, fleet.JournalOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "nordserved: opening journal: %v\n", err)
				os.Exit(1)
			}
		}
		cfg.Dispatcher = func(s *serve.Server) serve.Dispatcher {
			coord = fleet.NewCoordinator(s, fleet.Options{
				LeaseTTL:     *leaseTTL,
				MaxAttempts:  *maxAttempts,
				RetryBase:    *retryBase,
				RetryMax:     *retryMax,
				QueueDepth:   *queue,
				LocalWorkers: localWorkers,
				JobDeadline:  *jobDeadline,
				Journal:      journal,
			})
			return coord
		}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	handler := srv.Handler()
	if coord != nil {
		mux := http.NewServeMux()
		mux.Handle("/fleet/", coord.Handler())
		mux.Handle("/", handler)
		handler = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("nordserved listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Printf("nordserved: %s, draining (budget %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "nordserved: drain incomplete: %v\n", err)
		}
		_ = httpSrv.Shutdown(context.Background())
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runWorker runs worker mode until SIGTERM/SIGINT; in-flight jobs are
// given back to the coordinator on the way out.
func runWorker(coordinator, id string, slots int, cacheTier string) int {
	if coordinator == "" {
		fmt.Fprintln(os.Stderr, "nordserved: -mode worker needs -coordinator http://host:port")
		return 2
	}
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator: coordinator,
		ID:          id,
		Slots:       slots,
		CacheTier:   cacheTier,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	fmt.Printf("nordserved worker %s serving %s (%d slots)\n", id, coordinator, slots)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("nordserved worker %s: drained\n", id)
	return 0
}
