// Command nordserved serves NoC simulations over HTTP: jobs are
// submitted as JSON, scheduled on a bounded worker pool, and memoized in
// a content-addressed result cache so identical configurations are
// simulated exactly once.
//
//	nordserved -addr :8080 -workers 4 -cache-dir /var/cache/nord
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"synthetic","synthetic":{"design":"nord","rate":0.05}}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -sN localhost:8080/v1/jobs/j000001/events
//	curl -s localhost:8080/metrics
//
// On SIGTERM/SIGINT the server drains: intake stops (503), queued and
// running jobs get -drain-timeout to finish, then stragglers are
// canceled cooperatively through the sim layer's context polling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nord/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "queued-job limit before submissions get 429")
		cacheEntries = flag.Int("cache-entries", 512, "in-memory result cache capacity")
		cacheDir     = flag.String("cache-dir", "", "directory for on-disk cache spill (empty disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("nordserved listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Printf("nordserved: %s, draining (budget %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "nordserved: drain incomplete: %v\n", err)
		}
		_ = httpSrv.Shutdown(context.Background())
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
