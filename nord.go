// Package nord is a cycle-level reproduction of "NoRD: Node-Router
// Decoupling for Effective Power-gating of On-Chip Routers" (Chen &
// Pinkston, MICRO 2012).
//
// The library contains everything the paper's evaluation needs, built
// from scratch on the Go standard library:
//
//   - a 2D-mesh wormhole virtual-channel network-on-chip simulator with
//     credit-based flow control and Duato-protocol adaptive routing
//     (internal/noc);
//   - four power-gating designs: the No_PG baseline, conventional
//     power-gating (Conv_PG), conventional power-gating with early wakeup
//     (Conv_PG_OPT), and NoRD itself — the chip-wide bypass ring through
//     each node's network interface that decouples a node's ability to
//     send, receive and forward packets from its router's power state;
//   - an Orion-2.0-like power and area model calibrated to the paper's
//     Figure 1 (internal/power);
//   - synthetic traffic (uniform random, bit complement, ...) and a
//     full-system workload substrate — cores, L1s, a blocking MESI
//     directory over distributed L2 banks and corner memory controllers —
//     whose ten profiles stand in for the PARSEC 2.0 suite
//     (internal/traffic, internal/memsys);
//   - the offline Floyd-Warshall planner that selects performance-centric
//     routers for asymmetric wakeup thresholds (internal/topology);
//   - one driver per table and figure of the evaluation (internal/sim).
//
// # Quick start
//
//	res, err := nord.RunSynthetic(nord.SynthConfig{
//		Design: nord.NoRD,
//		Rate:   0.05, // flits/node/cycle, uniform random
//	})
//	if err != nil { ... }
//	fmt.Printf("latency %.1f cycles, %d wakeups\n",
//		res.AvgPacketLatency, res.Wakeups)
//
// Full-system PARSEC-like runs work the same way through RunWorkload, and
// the Fig* / Suite functions regenerate every figure of the paper.
package nord

import (
	"nord/internal/noc"
	"nord/internal/power"
	"nord/internal/sim"
	"nord/internal/topology"
	"nord/internal/trace"
)

// Design selects the power-gating scheme under evaluation.
type Design = noc.Design

// The four designs compared throughout the paper (Section 5.1).
const (
	// NoPG is the baseline without power-gating.
	NoPG = noc.NoPG
	// ConvPG applies conventional power-gating to routers.
	ConvPG = noc.ConvPG
	// ConvPGOpt is conventional power-gating optimised with early wakeup.
	ConvPGOpt = noc.ConvPGOpt
	// NoRD is the paper's node-router decoupling design.
	NoRD = noc.NoRD
)

// Result is the outcome of one simulation run; see the sim package for
// field documentation.
type Result = sim.Result

// SynthConfig configures a synthetic-traffic run (uniform random, bit
// complement, transpose or tornado patterns at a fixed injection rate).
type SynthConfig = sim.SynthConfig

// WorkloadConfig configures a full-system PARSEC-like run on top of the
// coherence substrate.
type WorkloadConfig = sim.WorkloadConfig

// Tech identifies a technology point for the power model (65/45/32 nm at
// 1.0-1.2 V; the paper's primary point is 45 nm, 1.1 V, 3 GHz).
type Tech = power.Tech

// RunSynthetic executes one synthetic-traffic simulation and returns its
// measurements and energy accounting.
func RunSynthetic(c SynthConfig) (Result, error) { return sim.RunSynthetic(c) }

// RunWorkload executes one PARSEC-like full-system simulation to
// completion, returning measurements including execution time.
func RunWorkload(c WorkloadConfig) (Result, error) { return sim.RunWorkload(c) }

// Benchmarks lists the ten PARSEC-like workload names.
func Benchmarks() []string { return sim.Benchmarks() }

// Designs returns the paper's comparison set in presentation order.
func Designs() []Design { return sim.FullDesigns() }

// PerfCentricSet returns the performance-centric router set the planner
// picks for a WxH mesh (Section 4.4; {4,5,6,7,...} style IDs).
func PerfCentricSet(w, h int) ([]int, error) { return sim.PerfCentricSet(w, h) }

// DefaultTech is the paper's primary technology point.
func DefaultTech() Tech { return power.DefaultTech() }

// NewPowerModel builds the Orion-like power/area model at a technology
// point, for custom energy analyses.
func NewPowerModel(t Tech) (*power.Model, error) { return power.New(t) }

// TradeoffPoint re-exports the planner's Figure 6 curve points.
type TradeoffPoint = topology.TradeoffPoint

// Suite runs the full PARSEC-like suite over all four designs at the
// given instruction-count scale (1.0 = 60k instructions per core) and
// returns per-figure views (Figures 8-12). progress may be nil.
func Suite(scale float64, seed int64, progress func(string)) (*SuiteResult, error) {
	return sim.RunSuite(scale, seed, progress)
}

// ParallelSuite is Suite with the (benchmark, design) cells executed
// concurrently across CPU cores.
func ParallelSuite(scale float64, seed int64, progress func(string)) (*SuiteResult, error) {
	return sim.ParallelSuite(scale, seed, progress)
}

// SuiteResult holds the PARSEC-like suite measurements and derives the
// Figure 8-12 tables.
type SuiteResult = sim.SuiteResult

// Trace is a recorded packet-injection trace for trace-driven replays.
type Trace = trace.Trace

// TraceConfig configures a trace replay run.
type TraceConfig = sim.TraceConfig

// RecordWorkloadTrace runs a full-system workload once and returns the
// trace of every packet it injected alongside the run's measurements.
// Replay it with RunTrace/ReplayTrace to compare designs on identical
// traffic without re-simulating the memory system.
func RecordWorkloadTrace(c WorkloadConfig) (*Trace, Result, error) {
	return sim.RecordWorkloadTrace(c)
}

// RunTrace replays a saved trace file onto the configured design.
func RunTrace(c TraceConfig) (Result, error) { return sim.RunTrace(c) }

// ReplayTrace replays an in-memory trace onto the configured design.
func ReplayTrace(c TraceConfig, t *Trace) (Result, error) { return sim.ReplayTrace(c, t) }

// LoadTrace and (*Trace).Save round-trip traces on disk (.gz supported).
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }
