module nord

go 1.23
