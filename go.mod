module nord

go 1.22
