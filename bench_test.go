// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each bench regenerates its experiment and reports
// the figure's headline quantities as custom metrics (ReportMetric), so
// `go test -bench=. -benchmem` doubles as the reproduction run. The
// expensive PARSEC-like suite (Figures 8-12) is executed once and shared
// across its benchmarks.
package nord_test

import (
	"sync"
	"testing"

	"nord"
	"nord/internal/noc"
	"nord/internal/sim"
	"nord/internal/traffic"
)

// benchScale keeps the full-system suite affordable inside a benchmark
// run; cmd/nordbench runs bigger instances.
const benchScale = 0.05

var (
	suiteOnce sync.Once
	suiteRes  *sim.SuiteResult
	suiteErr  error
)

func suite(b *testing.B) *sim.SuiteResult {
	b.Helper()
	suiteOnce.Do(func() {
		suiteRes, suiteErr = sim.RunSuite(benchScale, 1, nil)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteRes
}

// BenchmarkFig01aStaticPowerShare reproduces Figure 1(a): the static
// share of router power across technology points. Reported metrics are
// the three anchor shares (percent).
func BenchmarkFig01aStaticPowerShare(b *testing.B) {
	var pts []sim.TechPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sim.Fig1aStaticShare()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		switch {
		case p.NodeNM == 65 && p.Voltage == 1.2:
			b.ReportMetric(100*p.StaticShare, "%static@65nm/1.2V")
		case p.NodeNM == 45 && p.Voltage == 1.1:
			b.ReportMetric(100*p.StaticShare, "%static@45nm/1.1V")
		case p.NodeNM == 32 && p.Voltage == 1.0:
			b.ReportMetric(100*p.StaticShare, "%static@32nm/1.0V")
		}
	}
}

// BenchmarkFig01bPowerBreakdown reproduces Figure 1(b): the router power
// decomposition at 45nm/1.0V (paper: dynamic 62%, buffer 21%, ...).
func BenchmarkFig01bPowerBreakdown(b *testing.B) {
	var keys []string
	var vals []float64
	for i := 0; i < b.N; i++ {
		var err error
		keys, vals, err = sim.Fig1bBreakdown()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, k := range keys {
		b.ReportMetric(100*vals[i], "%"+k)
	}
}

// BenchmarkFig03IdlePeriods reproduces the Section 3.2 / Figure 3
// analysis: the fraction of router idle periods at or below the 10-cycle
// breakeven time under No_PG (paper: >61% on average).
func BenchmarkFig03IdlePeriods(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig3IdlePeriods(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.LEBETFrac
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(100*avg, "%idle-periods<=BET")
}

// BenchmarkFig06PlannerTradeoff reproduces Figure 6: the Floyd-Warshall
// trade-off between powered-on routers, node-to-node distance and
// per-hop latency on the 4x4 mesh.
func BenchmarkFig06PlannerTradeoff(b *testing.B) {
	var pts []nord.TradeoffPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = sim.Fig6Tradeoff()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].AvgHops, "hops@K=0")
	b.ReportMetric(pts[6].AvgHops, "hops@K=6")
	b.ReportMetric(pts[16].AvgHops, "hops@K=16")
	b.ReportMetric(pts[6].PerHopCycles, "cyc/hop@K=6")
}

// BenchmarkFig07WakeupThreshold reproduces Figure 7: latency on the pure
// bypass ring (all routers forced off) versus injection rate, with the
// windowed VC-request metric used to place the wakeup thresholds. The
// reported metric is the ring's saturation throughput as a fraction of
// the full network's (paper: ~14%).
func BenchmarkFig07WakeupThreshold(b *testing.B) {
	var ringCap float64
	for i := 0; i < b.N; i++ {
		pts, err := sim.Fig7WakeupThreshold([]float64{0.02, 0.06, 0.10}, 30_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		ringCap = pts[len(pts)-1].Throughput
	}
	// The full 4x4 network saturates around 0.40 flits/node/cycle.
	b.ReportMetric(ringCap, "ring-throughput")
	b.ReportMetric(100*ringCap/0.40, "%of-full-network")
}

// BenchmarkFig08StaticEnergy reproduces Figure 8: router static energy
// normalised to No_PG (paper averages: Conv_PG 48.8%, Conv_PG_OPT 53.0%,
// NoRD 37.1%).
func BenchmarkFig08StaticEnergy(b *testing.B) {
	sr := suite(b)
	var avg map[noc.Design]float64
	for i := 0; i < b.N; i++ {
		_, avg = sr.Fig8StaticEnergy()
	}
	b.ReportMetric(100*avg[noc.ConvPG], "%Conv_PG")
	b.ReportMetric(100*avg[noc.ConvPGOpt], "%Conv_PG_OPT")
	b.ReportMetric(100*avg[noc.NoRD], "%NoRD")
}

// BenchmarkFig09Overhead reproduces Figure 9: power-gating overhead
// energy and wakeup counts normalised to Conv_PG (paper: NoRD cuts
// overhead 80.7% and wakeups 81.0%).
func BenchmarkFig09Overhead(b *testing.B) {
	sr := suite(b)
	var avgE, avgW map[noc.Design]float64
	for i := 0; i < b.N; i++ {
		_, avgE = sr.Fig9aOverheadEnergy()
		_, avgW = sr.Fig9bWakeups()
	}
	b.ReportMetric(100*avgE[noc.NoRD], "%overheadE-NoRD")
	b.ReportMetric(100*avgW[noc.NoRD], "%wakeups-NoRD")
	b.ReportMetric(100*avgW[noc.ConvPGOpt], "%wakeups-OPT")
}

// BenchmarkFig10EnergyBreakdown reproduces Figure 10: the total NoC
// energy of each design normalised to No_PG (paper: NoRD saves 9.1%,
// 9.4% and 20.6% versus No_PG, Conv_PG and Conv_PG_OPT... i.e. NoRD's
// total is the lowest).
func BenchmarkFig10EnergyBreakdown(b *testing.B) {
	sr := suite(b)
	var bd map[string]map[noc.Design]float64
	for i := 0; i < b.N; i++ {
		raw := sr.Fig10Breakdown()
		bd = map[string]map[noc.Design]float64{}
		for bench, m := range raw {
			bd[bench] = map[noc.Design]float64{}
			for d, e := range m {
				bd[bench][d] = e.Total()
			}
		}
	}
	for _, d := range sim.FullDesigns() {
		sum := 0.0
		for _, bench := range sr.Benchmarks {
			sum += bd[bench][d]
		}
		b.ReportMetric(100*sum/float64(len(sr.Benchmarks)), "%total-"+d.String())
	}
}

// BenchmarkFig11PacketLatency reproduces Figure 11: average packet
// latency increase over No_PG (paper: Conv_PG +63.8%, Conv_PG_OPT +41.5%,
// NoRD +15.2%).
func BenchmarkFig11PacketLatency(b *testing.B) {
	sr := suite(b)
	var inc map[noc.Design]float64
	for i := 0; i < b.N; i++ {
		inc = sr.LatencyIncreaseAvg()
	}
	b.ReportMetric(100*inc[noc.ConvPG], "%+Conv_PG")
	b.ReportMetric(100*inc[noc.ConvPGOpt], "%+Conv_PG_OPT")
	b.ReportMetric(100*inc[noc.NoRD], "%+NoRD")
}

// BenchmarkFig12ExecutionTime reproduces Figure 12: execution time
// normalised to No_PG (paper: +11.7%, +8.1%, +3.9%).
func BenchmarkFig12ExecutionTime(b *testing.B) {
	sr := suite(b)
	var avg map[noc.Design]float64
	for i := 0; i < b.N; i++ {
		_, avg = sr.Fig12ExecTime()
	}
	b.ReportMetric(100*(avg[noc.ConvPG]-1), "%+Conv_PG")
	b.ReportMetric(100*(avg[noc.ConvPGOpt]-1), "%+Conv_PG_OPT")
	b.ReportMetric(100*(avg[noc.NoRD]-1), "%+NoRD")
}

// BenchmarkFig13WakeupLatency reproduces Figure 13: latency sensitivity
// to the wakeup latency (9 -> 18 cycles). NoRD stays flat while the
// conventional designs degrade.
func BenchmarkFig13WakeupLatency(b *testing.B) {
	var pts []sim.Fig13Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sim.Fig13WakeupLatency([]int{9, 18}, 0.05, 30_000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	get := func(d noc.Design, wl int) float64 {
		for _, p := range pts {
			if p.Design == d && p.WakeupLatency == wl {
				return p.AvgLatency
			}
		}
		return 0
	}
	b.ReportMetric(get(noc.ConvPG, 18)-get(noc.ConvPG, 9), "cyc-growth-Conv_PG")
	b.ReportMetric(get(noc.ConvPGOpt, 18)-get(noc.ConvPGOpt, 9), "cyc-growth-OPT")
	b.ReportMetric(get(noc.NoRD, 18)-get(noc.NoRD, 9), "cyc-growth-NoRD")
}

// BenchmarkFig14LoadSweep16 reproduces Figure 14: 16-node latency and
// power across the load range. The reported metrics summarise the
// low-load region (paper: NoRD beats Conv_PG_OPT on latency there) and
// the power saving versus No_PG.
func BenchmarkFig14LoadSweep16(b *testing.B) {
	var pts []sim.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = sim.LoadSweep(4, 4, "uniform", []float64{0.05, 0.10, 0.30}, 30_000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	get := func(d noc.Design, rate float64) sim.SweepPoint {
		for _, p := range pts {
			if p.Design == d && p.Rate == rate {
				return p
			}
		}
		return sim.SweepPoint{}
	}
	b.ReportMetric(get(noc.NoPG, 0.10).AvgLatency, "lat@0.10-No_PG")
	b.ReportMetric(get(noc.ConvPGOpt, 0.10).AvgLatency, "lat@0.10-OPT")
	b.ReportMetric(get(noc.NoRD, 0.10).AvgLatency, "lat@0.10-NoRD")
	b.ReportMetric(100*get(noc.NoRD, 0.05).PowerW/get(noc.NoPG, 0.05).PowerW, "%power@0.05-NoRD/No_PG")
}

// BenchmarkFig15LoadSweep64 reproduces Figure 15: the 64-node sweeps.
// The paper's point: NoRD's low-load latency advantage over Conv_PG_OPT
// grows with network size (cumulative wakeups scale with hop count).
func BenchmarkFig15LoadSweep64(b *testing.B) {
	var uni []sim.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		uni, err = sim.LoadSweep(8, 8, "uniform", []float64{0.05, 0.10}, 20_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.LoadSweep(8, 8, "bitcomp", []float64{0.04}, 20_000, 1); err != nil {
			b.Fatal(err)
		}
	}
	get := func(d noc.Design, rate float64) sim.SweepPoint {
		for _, p := range uni {
			if p.Design == d && p.Rate == rate {
				return p
			}
		}
		return sim.SweepPoint{}
	}
	b.ReportMetric(get(noc.NoPG, 0.10).AvgLatency, "lat@0.10-No_PG")
	b.ReportMetric(get(noc.ConvPGOpt, 0.10).AvgLatency, "lat@0.10-OPT")
	b.ReportMetric(get(noc.NoRD, 0.10).AvgLatency, "lat@0.10-NoRD")
}

// BenchmarkSec68AreaOverhead reproduces the Section 6.8 area comparison
// (paper: NoRD +3.1% versus Conv_PG_OPT).
func BenchmarkSec68AreaOverhead(b *testing.B) {
	var rows []sim.AreaRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.AreaTable()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[3].VsOpt, "%area-NoRD-vs-OPT")
}

// --- Ablations (design choices DESIGN.md calls out) -------------------

// BenchmarkAblationThresholds compares NoRD with and without the
// asymmetric wakeup thresholds (Section 4.4 / 6.1).
func BenchmarkAblationThresholds(b *testing.B) {
	var asym, sym sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		asym, err = sim.RunSynthetic(sim.SynthConfig{Design: noc.NoRD, Rate: 0.08, Measure: 30_000, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		sym, err = sim.RunSynthetic(sim.SynthConfig{Design: noc.NoRD, Rate: 0.08, Measure: 30_000, Seed: 2, NoPerfCentric: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(asym.AvgPacketLatency, "lat-asymmetric")
	b.ReportMetric(sym.AvgPacketLatency, "lat-symmetric")
	b.ReportMetric(float64(asym.Wakeups), "wakeups-asymmetric")
	b.ReportMetric(float64(sym.Wakeups), "wakeups-symmetric")
}

// BenchmarkAblationMisrouteCap sweeps the NoRD misroute cap: small caps
// force packets onto the escape ring sooner (long committed detours),
// large caps let them wander adaptively.
func BenchmarkAblationMisrouteCap(b *testing.B) {
	caps := []int{1, 2, 4, 8}
	lat := make([]float64, len(caps))
	for i := 0; i < b.N; i++ {
		for j, c := range caps {
			r, err := sim.RunSynthetic(sim.SynthConfig{Design: noc.NoRD, Rate: 0.05, Measure: 20_000, Seed: 2, MisrouteCap: c})
			if err != nil {
				b.Fatal(err)
			}
			lat[j] = r.AvgPacketLatency
		}
	}
	for j, c := range caps {
		b.ReportMetric(lat[j], "lat-cap"+string(rune('0'+c)))
	}
}

// BenchmarkSec68ShortPipelines reproduces the Section 6.8 discussion:
// with both sides optimised (2-stage pipeline baseline with 1-cycle
// early-wakeup hiding, NoRD with the aggressive 1-cycle bypass), NoRD
// remains competitive with the optimised conventional design.
func BenchmarkSec68ShortPipelines(b *testing.B) {
	var opt, nordRes sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		opt, err = sim.RunSynthetic(sim.SynthConfig{
			Design: noc.ConvPGOpt, Rate: 0.05, Measure: 30_000, Seed: 3, TwoStageRouter: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		nordRes, err = sim.RunSynthetic(sim.SynthConfig{
			Design: noc.NoRD, Rate: 0.05, Measure: 30_000, Seed: 3,
			TwoStageRouter: true, AggressiveBypass: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(opt.AvgPacketLatency, "lat-2stage-OPT")
	b.ReportMetric(nordRes.AvgPacketLatency, "lat-2stage-NoRD-aggr")
}

// BenchmarkAblationDynamicClassify compares the fixed planner-chosen
// performance-centric class against the dynamic (demand-ranked)
// classification the paper sketches as future work (Section 4.4).
func BenchmarkAblationDynamicClassify(b *testing.B) {
	var fixed, dyn sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		fixed, err = sim.RunSynthetic(sim.SynthConfig{Design: noc.NoRD, Rate: 0.08, Measure: 30_000, Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		dyn, err = sim.RunSynthetic(sim.SynthConfig{Design: noc.NoRD, Rate: 0.08, Measure: 30_000, Seed: 4, DynamicClassify: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fixed.AvgPacketLatency, "lat-fixed")
	b.ReportMetric(dyn.AvgPacketLatency, "lat-dynamic")
	b.ReportMetric(float64(fixed.Wakeups), "wakeups-fixed")
	b.ReportMetric(float64(dyn.Wakeups), "wakeups-dynamic")
}

// BenchmarkAblationTickCost measures the raw simulation speed of the
// cycle kernel per design (cost of one network cycle at 5% load).
func BenchmarkAblationTickCost(b *testing.B) {
	for _, d := range sim.FullDesigns() {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			p := noc.DefaultParams(d)
			n := noc.MustNew(p)
			// Light self-traffic via direct injection.
			for i := 0; i < b.N; i++ {
				if i%20 == 0 {
					n.Inject(n.NewPacket(i%16, (i+5)%16, 0, 1))
				}
				n.Tick()
			}
		})
	}
}

// BenchmarkAblationRingPlacement compares bypass-ring constructions
// (Section 4.4 notes placement as an open design dimension): the default
// row-comb serpentine versus the transposed (column-comb) cycle.
func BenchmarkAblationRingPlacement(b *testing.B) {
	run := func(order []int) float64 {
		p := noc.DefaultParams(noc.NoRD)
		p.RingOrder = order
		p.PerfCentric = nil // isolate the ring effect
		n := noc.MustNew(p)
		inj := traffic.NewSynthetic(n, traffic.UniformRandom, 0.05, 12)
		for c := 0; c < 5_000; c++ {
			inj.Tick(n.Cycle())
			n.Tick()
		}
		n.BeginMeasurement()
		for c := 0; c < 25_000; c++ {
			inj.Tick(n.Cycle())
			n.Tick()
		}
		return n.Collector().AvgPacketLatency()
	}
	// Transposed comb for the 4x4 mesh (column serpentine).
	transposed := []int{0, 4, 8, 12, 13, 9, 5, 6, 10, 14, 15, 11, 7, 3, 2, 1}
	var comb, alt float64
	for i := 0; i < b.N; i++ {
		comb = run(nil)
		alt = run(transposed)
	}
	b.ReportMetric(comb, "lat-comb-ring")
	b.ReportMetric(alt, "lat-transposed-ring")
}
